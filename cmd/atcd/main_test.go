package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestLiveTelemetrySurface drives a full atcd run in-process: sim
// backend, HTTP telemetry surface, timeline and JSONL artifacts, and
// signal-driven shutdown. It is the acceptance check that a live atcd
// answers /metrics with per-node spin-latency and controller-decision
// series.
func TestLiveTelemetrySurface(t *testing.T) {
	dir := t.TempDir()
	timeline := filepath.Join(dir, "timeline.json")
	jsonl := filepath.Join(dir, "series.jsonl")

	addrc := make(chan string, 1)
	listenReady = func(addr string) { addrc <- addr }
	defer func() { listenReady = nil }()

	var stdout, stderr bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-backend", "sim", "-periods", "60",
			"-listen", "127.0.0.1:0",
			"-timeline", timeline, "-jsonl", jsonl,
		}, &stdout, &stderr)
	}()

	var addr string
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("run exited before listening: %v\n%s", err, stderr.String())
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for the listener")
	}

	// The surface stays up after the control loop ends, so polling until
	// the run's series appear observes a complete scrape deterministically.
	metrics := pollMetrics(t, addr, done, &stderr)
	for _, want := range []string{
		"atc_vm_spin_latency_ns_last{node=", // per-node spin latency
		"atc_daemon_decision_apply_total",   // controller decisions
		"atc_daemon_slice_ns_last{vm=",      // per-VM slice series
		"atc_sched_dispatches_total{node=",  // per-node scheduler counters
		"atc_spin_latency_bucket{node=",     // spin-latency histogram
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q\n%s", want, metrics)
		}
	}

	// /debug/atc must be a JSON snapshot with a daemon summary.
	resp, err := http.Get("http://" + addr + "/debug/atc")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var dbg struct {
		Summary map[string]any `json:"summary"`
	}
	if err := json.Unmarshal(body, &dbg); err != nil {
		t.Fatalf("/debug/atc is not JSON: %v", err)
	}
	if p, ok := dbg.Summary["periods"].(float64); !ok || p <= 0 {
		t.Fatalf("/debug/atc summary has no committed periods: %v", dbg.Summary)
	}

	// SIGINT must shut the server down and let run return cleanly.
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run failed: %v\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not exit after SIGINT")
	}
	if !strings.Contains(stderr.String(), "telemetry server closed") {
		t.Errorf("shutdown did not report closing the server:\n%s", stderr.String())
	}

	// The timeline artifact must parse as trace-event JSON and carry
	// both scheduling slices and telemetry spans.
	raw, err := os.ReadFile(timeline)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("timeline is not trace-event JSON: %v", err)
	}
	var sched, spin, decision bool
	for _, ev := range file.TraceEvents {
		switch {
		case ev.Ph == "X" && strings.Contains(ev.Name, "/"):
			sched = true
		case ev.Name == "spin":
			spin = true
		case ev.Name == "decision":
			decision = true
		}
	}
	if !sched || !spin || !decision {
		t.Errorf("timeline lacks expected events: sched=%v spin=%v decision=%v", sched, spin, decision)
	}

	// The JSONL artifact must be line-parseable with a meta header.
	jraw, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(jraw), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("jsonl dump has %d lines", len(lines))
	}
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("jsonl line %d is not JSON: %v", i, err)
		}
		if i == 0 && m["type"] != "meta" {
			t.Fatalf("jsonl does not start with a meta line: %s", ln)
		}
	}
}

// pollMetrics scrapes /metrics until the daemon's committed series are
// visible (the loop may still be mid-run on the first scrapes).
func pollMetrics(t *testing.T, addr string, done chan error, stderr *bytes.Buffer) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		select {
		case err := <-done:
			t.Fatalf("run exited during scrape: %v\n%s", err, stderr.String())
		default:
		}
		resp, err := http.Get("http://" + addr + "/metrics")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
				t.Fatalf("/metrics content type %q", ct)
			}
			last = string(body)
			// sched_dispatches totals land at finalization, so their
			// presence means the scrape covers the whole run.
			if strings.Contains(last, "atc_daemon_decision_apply_total") &&
				strings.Contains(last, "atc_vm_spin_latency_ns_last") &&
				strings.Contains(last, "atc_sched_dispatches_total") {
				return last
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("metrics never showed the run's series; last scrape:\n%s", last)
	return ""
}

// TestDemoBackend keeps the original demo path working through run().
func TestDemoBackend(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-backend", "demo", "-periods", "12"}, &stdout, &stderr); err != nil {
		t.Fatalf("demo run failed: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "vm1 ") {
		t.Errorf("demo produced no actuation lines:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "12 control periods executed") {
		t.Errorf("missing period summary:\n%s", stderr.String())
	}
}

// TestBadFlags proves flag errors surface as errors, not exits.
func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-backend", "nope"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown backend did not error")
	}
	if err := run([]string{"-backend", "sim", "-swap", "garbage"}, &stdout, &stderr); err == nil {
		t.Fatal("bad -swap did not error")
	}
}
