// Package paperdata encodes every concrete number the paper states in
// its text (the figures themselves are bar charts without printed
// values, so this is the complete set of citable quantities). The
// validate package scores measured results against them.
package paperdata

// Fig1 — normalized execution time of lu under CS (vs CR) at the two
// virtual-cluster sizes the text quotes (§II-A1).
var Fig1 = struct {
	CSAt2VMs, CSAt32VMs float64
}{CSAt2VMs: 0.30, CSAt32VMs: 0.44}

// Fig2 — CS impact on non-parallel applications (§II-A2): ping RTT is
// 1.75x CR's, sphinx3's execution time 1.11x; stream slightly lower;
// bonnie++ unaffected.
var Fig2 = struct {
	PingRTTRatio   float64
	Sphinx3Ratio   float64
	StreamLower    bool
	BonnieAffected bool
}{PingRTTRatio: 1.75, Sphinx3Ratio: 1.11, StreamLower: true, BonnieAffected: false}

// Fig5 — §II-B: all six kernels improve as slices shrink (up to ~10x)
// and spinlock latency correlates with execution time at r > 0.9.
var Fig5 = struct {
	MaxGain    float64
	MinPearson float64
}{MaxGain: 10, MinPearson: 0.9}

// Fig8 — §III-B: lu.C's performance inflection point.
var Fig8 = struct {
	LuInflectionMS float64
}{LuInflectionMS: 0.2}

// Euclid — §III-B: D(O,P) per candidate slice {0.5, 0.4, 0.3, 0.2, 0.1,
// 0.03} ms, minimum at 0.3 ms.
var Euclid = struct {
	CandidatesMS []float64
	D            []float64
	BestMS       float64
}{
	CandidatesMS: []float64{0.5, 0.4, 0.3, 0.2, 0.1, 0.03},
	D:            []float64{0.034, 0.020, 0.018, 0.049, 0.039, 0.069},
	BestMS:       0.3,
}

// Fig10 — §IV-B1's quoted points for lu at 8 physical nodes: BS and CS
// run 566.7% and 253.3% as long as ATC (i.e., BS 0.85, CS 0.38, ATC 0.15
// normalized to CR).
var Fig10 = struct {
	LuAt8Nodes struct{ BS, CS, ATC float64 }
	// Ordering is the expected ranking of normalized times (best first).
	Ordering []string
	// GainRange is the claimed ATC improvement band over CR.
	GainMin, GainMax float64
}{
	LuAt8Nodes: struct{ BS, CS, ATC float64 }{BS: 0.85, CS: 0.38, ATC: 0.15},
	Ordering:   []string{"ATC", "CS", "DSS", "BS", "CR"},
	GainMin:    1.5,
	GainMax:    10,
}

// Fig11 — §IV-B2's quoted point: sp on VC1 under ATC/DSS/CS/BS/CR.
var Fig11VC1SP = struct {
	ATC, DSS, CS, BS, CR float64
}{ATC: 0.25, DSS: 0.45, CS: 0.49, BS: 0.9, CR: 1}

// Fig13 — §IV-C: the web server under CS performs at ~35% of CR; VS,
// DSS and ATC(6ms) serve it better than CR; bonnie++ matches CR under
// every approach; stream is slightly worse under CS and ATC(6ms).
var Fig13 = struct {
	WebUnderCS float64
}{WebUnderCS: 0.35}

// TableI — the Atlas job-size distribution (§IV-B2). Kept in
// internal/trace as the operative copy; mirrored here for completeness.
var TableI = map[int]float64{
	8: 0.314, 16: 0.126, 32: 0.045, 64: 0.126, 128: 0.061, 256: 0.045,
	0: 0.283, // others
}
