package proptest_test

import (
	"testing"

	"atcsched/internal/cluster"
	"atcsched/internal/proptest"
)

// Minimized specs for bugs the property harness found, pinned so they
// cannot regress. Each came out of the shrinker; the battery must now
// pass them under every approach.

// TestRegressionHybridPollStarvation pins two bugs at once: hybrid's
// blanket promotion used to re-insert a slice-end-preempted VCPU at the
// queue head (starving its sibling), and a RecvPoll budget at or above
// the slice restarted from scratch on every dispatch (so pollers never
// blocked and dom0 never ran — total deadlock under HY).
func TestRegressionHybridPollStarvation(t *testing.T) {
	spec := proptest.Spec{
		Seed:  20,
		Nodes: 1, PCPUs: 1,
		FixedSliceMs: 5,
		Clusters: []proptest.ClusterSpec{
			{Kernel: "sp", Class: "A", VMs: 2, VCPUs: 1, Rounds: 1, Iterations: 1},
		},
		HorizonSec: 900,
	}
	if err := proptest.CheckSpec(spec, cluster.ExtendedApproaches()); err != nil {
		t.Fatalf("pinned HY starvation spec failed again: %v", err)
	}
}

// TestRegressionBalanceStrandsPreempted pins the balance-placement
// stranding: BS may re-place a preempted VCPU on another PCPU's
// runqueue, and with stealing disabled nothing told that idle PCPU to
// look — a single compute-only VCPU on a 3-PCPU node never finished.
func TestRegressionBalanceStrandsPreempted(t *testing.T) {
	spec := proptest.Spec{
		Seed:  47,
		Nodes: 1, PCPUs: 3,
		FixedSliceMs: 5,
		DisableBoost: true, DisableSteal: true,
		Clusters: []proptest.ClusterSpec{
			{Kernel: "ep", Class: "A", VMs: 1, VCPUs: 1, Rounds: 1, Iterations: 2},
		},
		HorizonSec: 900,
	}
	if err := proptest.CheckSpec(spec, cluster.ExtendedApproaches()); err != nil {
		t.Fatalf("pinned BS stranding spec failed again: %v", err)
	}
}
