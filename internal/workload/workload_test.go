package workload

import (
	"testing"
	"testing/quick"

	"atcsched/internal/netmodel"
	"atcsched/internal/sched/credit"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
)

func TestNPBProfilesValid(t *testing.T) {
	for _, k := range append(NPBKernels(), ExtraKernels()...) {
		for _, c := range []Class{ClassA, ClassB, ClassC} {
			p := NPB(k, c)
			if err := p.Validate(); err != nil {
				t.Errorf("%s.%v: %v", k, c, err)
			}
			if p.Name != k+"."+c.String() {
				t.Errorf("name = %q", p.Name)
			}
		}
	}
	// Class scaling is monotone in compute.
	for _, k := range append(NPBKernels(), ExtraKernels()...) {
		a, b, c := NPB(k, ClassA), NPB(k, ClassB), NPB(k, ClassC)
		if !(a.ComputePerIter < b.ComputePerIter && b.ComputePerIter < c.ComputePerIter) {
			t.Errorf("%s class compute not monotone", k)
		}
		if !(a.Footprint < c.Footprint) {
			t.Errorf("%s class footprint not monotone", k)
		}
	}
}

func TestUnknownKernelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown kernel accepted")
		}
	}()
	NPB("xx", ClassB)
}

// Every send must have a matching expected receive: for all patterns,
// sendTo(i) contains j exactly when recvFrom(j) contains i.
func TestPatternSymmetryProperty(t *testing.T) {
	patterns := []CommPattern{PatternNone, PatternRing, PatternNeighbor, PatternAllToAll, PatternButterfly, PatternStride}
	f := func(itRaw, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		it := int(itRaw)
		for _, p := range patterns {
			sends := make(map[[2]int]int)
			recvs := make(map[[2]int]int)
			for i := 0; i < n; i++ {
				for _, j := range p.sendTo(it, i, n) {
					if j == i || j < 0 || j >= n {
						return false
					}
					sends[[2]int{i, j}]++
				}
				for _, j := range p.recvFrom(it, i, n) {
					if j == i || j < 0 || j >= n {
						return false
					}
					recvs[[2]int{j, i}]++
				}
			}
			if len(sends) != len(recvs) {
				return false
			}
			for k, v := range sends {
				if recvs[k] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPatternStrings(t *testing.T) {
	for _, p := range []CommPattern{PatternNone, PatternRing, PatternNeighbor, PatternAllToAll, PatternButterfly, PatternStride, CommPattern(42)} {
		if p.String() == "" {
			t.Error("empty pattern name")
		}
	}
	for _, c := range []Class{ClassA, ClassB, ClassC, Class(9)} {
		if c.String() == "" {
			t.Error("empty class name")
		}
	}
}

func smallWorld(t *testing.T, nodes, pcpus int, slice sim.Time) *vmm.World {
	t.Helper()
	cfg := vmm.DefaultNodeConfig()
	cfg.PCPUs = pcpus
	cfg.Dom0VCPUs = 1
	opts := credit.DefaultOptions()
	opts.TimeSlice = slice
	w, err := vmm.NewWorld(nodes, cfg, netmodel.DefaultConfig(), credit.Factory(opts))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBSPAppCompletesRounds(t *testing.T) {
	w := smallWorld(t, 2, 2, 30*sim.Millisecond)
	vms := []*vmm.VM{
		w.Node(0).NewVM("vc0-a", vmm.ClassParallel, 2, 0, 1),
		w.Node(1).NewVM("vc0-b", vmm.ClassParallel, 2, 0, 1),
	}
	prof := NPB("lu", ClassA)
	prof.Iterations = 5
	app := NewBSPApp(prof, vms, 42)
	if app.Processes() != 4 {
		t.Fatalf("processes = %d", app.Processes())
	}
	done := false
	run := NewParallelRun(app, 3, false, func() { done = true })
	run.Install()
	w.Start()
	w.RunUntil(30 * sim.Second)
	if !done {
		t.Fatalf("run never reached target (rounds=%d)", run.Rounds())
	}
	if run.Rounds() != 3 {
		t.Errorf("rounds = %d, want exactly 3 (not forever)", run.Rounds())
	}
	times := run.Times()
	if len(times) != 3 {
		t.Fatalf("times = %v", times)
	}
	for i, tt := range times {
		if tt <= 0 {
			t.Errorf("round %d time = %v", i, tt)
		}
	}
	if run.MeanTime() <= 0 {
		t.Error("mean time = 0")
	}
	// Messages flowed across the wire: ring pattern, 2 VMs, 2 ranks,
	// 5 iters, 3 rounds → 2*2*5*3 = 60 cross-VM packets.
	if vms[0].PacketsSent() == 0 || vms[1].PacketsReceived() == 0 {
		t.Error("no cross-VM traffic")
	}
}

func TestBSPForeverKeepsRunning(t *testing.T) {
	w := smallWorld(t, 1, 2, 30*sim.Millisecond)
	vms := []*vmm.VM{w.Node(0).NewVM("solo", vmm.ClassParallel, 2, 0, 1)}
	prof := NPB("is", ClassA)
	prof.Iterations = 3
	app := NewBSPApp(prof, vms, 7)
	run := NewParallelRun(app, 2, true, nil)
	run.Install()
	w.Start()
	w.RunUntil(10 * sim.Second)
	if run.Rounds() <= 2 {
		t.Errorf("rounds = %d, want > target with Forever", run.Rounds())
	}
}

func TestBSPSpinAndExecTimeShrinkWithShorterSlices(t *testing.T) {
	// The paper's Figure 5 in miniature: an over-committed node (2 VMs ×
	// 2 VCPUs on 2 PCPUs plus a hog) runs lu; at 0.5 ms slices both the
	// spinlock latency and the execution time must beat 30 ms slices.
	run := func(slice sim.Time) (execTime float64, spin sim.Time) {
		w := smallWorld(t, 2, 2, slice)
		vms := []*vmm.VM{
			w.Node(0).NewVM("a", vmm.ClassParallel, 2, 0, 1),
			w.Node(1).NewVM("b", vmm.ClassParallel, 2, 0, 1),
		}
		// Over-commit both nodes with CPU hogs.
		for n := 0; n < 2; n++ {
			hog := w.Node(n).NewVM("hog", vmm.ClassNonParallel, 2, 0, 1)
			for _, v := range hog.VCPUs() {
				v.SetProcess(&SeqActions{Actions: []vmm.Action{vmm.Compute(sim.Second)}},
					func(*vmm.VCPU) vmm.Process {
						return &SeqActions{Actions: []vmm.Action{vmm.Compute(sim.Second)}}
					})
			}
		}
		// Enough iterations that one round's CPU work spans several 30 ms
		// slices — otherwise a round fits in one slice and lock-holder
		// preemption can never occur.
		prof := NPB("lu", ClassA)
		prof.Iterations = 100
		app := NewBSPApp(prof, vms, 11)
		run := NewParallelRun(app, 2, false, func() { w.Stop() })
		run.Install()
		w.Start()
		w.RunUntil(240 * sim.Second)
		return run.MeanTime(), app.SpinLatencyMean()
	}
	slowExec, slowSpin := run(30 * sim.Millisecond)
	fastExec, fastSpin := run(500 * sim.Microsecond)
	if fastSpin >= slowSpin {
		t.Errorf("spin latency: 0.5ms slice %v >= 30ms slice %v", fastSpin, slowSpin)
	}
	if fastExec >= slowExec {
		t.Errorf("exec time: 0.5ms slice %.4fs >= 30ms slice %.4fs", fastExec, slowExec)
	}
}

func TestCPUJobRecordsRounds(t *testing.T) {
	w := smallWorld(t, 1, 1, 30*sim.Millisecond)
	vm := w.Node(0).NewVM("spec", vmm.ClassNonParallel, 1, 0, 1)
	job := NewCPUJob(vm.VCPU(0), SPECProfiles()[0])
	w.Start()
	w.RunUntil(3 * sim.Second)
	if job.Rounds() < 3 {
		t.Fatalf("rounds = %d", job.Rounds())
	}
	// Alone on the node, a round takes ~its warm work (plus initial cache
	// fill).
	if m := job.MeanTime(); m < 0.4 || m > 0.45 {
		t.Errorf("mean round = %.4fs, want ~0.4s", m)
	}
}

func TestStreamJobBandwidth(t *testing.T) {
	w := smallWorld(t, 1, 1, 30*sim.Millisecond)
	vm := w.Node(0).NewVM("stream", vmm.ClassNonParallel, 1, 0, 1)
	job := NewStreamJob(vm.VCPU(0))
	w.Start()
	w.RunUntil(2 * sim.Second)
	if job.Rounds() < 5 {
		t.Fatalf("rounds = %d", job.Rounds())
	}
	bw := job.BandwidthMBps()
	// 400 MB per ~0.1 s round → ~4000 MB/s unhindered.
	if bw < 3500 || bw > 4100 {
		t.Errorf("bandwidth = %.0f MB/s", bw)
	}
}

func TestDiskJobThroughput(t *testing.T) {
	w := smallWorld(t, 1, 1, 30*sim.Millisecond)
	vm := w.Node(0).NewVM("bonnie", vmm.ClassNonParallel, 1, 0, 1)
	job := NewDiskJob(vm.VCPU(0))
	w.Start()
	w.RunUntil(5 * sim.Second)
	if job.Requests() < 100 {
		t.Fatalf("requests = %d", job.Requests())
	}
	// 100 MB/s disk minus positioning overhead → ~90 MB/s.
	if tp := job.ThroughputMBps(); tp < 80 || tp > 101 {
		t.Errorf("throughput = %.1f MB/s", tp)
	}
}

func TestPingJobRTT(t *testing.T) {
	w := smallWorld(t, 2, 1, 30*sim.Millisecond)
	client := w.Node(0).NewVM("pingc", vmm.ClassNonParallel, 1, 0, 1)
	echo := w.Node(1).NewVM("pinge", vmm.ClassNonParallel, 1, 0, 1)
	job := NewPingJob(client, 0, echo, 0, 10*sim.Millisecond)
	w.Start()
	w.RunUntil(3 * sim.Second)
	if job.Probes() < 100 {
		t.Fatalf("probes = %d", job.Probes())
	}
	rtt := job.MeanRTT()
	// Idle cluster: two wire crossings + four backend passes ≈ 150-500 µs.
	if rtt <= 0 || rtt > 0.002 {
		t.Errorf("RTT = %.6fs", rtt)
	}
	// Percentiles are ordered (within P2 estimation tolerance on this
	// nearly-constant distribution) and bounded by the max.
	tol := 0.01 * rtt
	if !(job.MeanRTT() <= job.P95RTT()+tol && job.P95RTT() <= job.P99RTT()+tol && job.P99RTT() <= job.MaxRTT()+tol) {
		t.Errorf("percentiles unordered: mean=%v p95=%v p99=%v max=%v",
			job.MeanRTT(), job.P95RTT(), job.P99RTT(), job.MaxRTT())
	}
}

func TestWebJobResponseTime(t *testing.T) {
	w := smallWorld(t, 2, 1, 30*sim.Millisecond)
	client := w.Node(0).NewVM("httperf", vmm.ClassNonParallel, 1, 0, 1)
	server := w.Node(1).NewVM("apache", vmm.ClassNonParallel, 1, 0, 1)
	job := NewWebJob(client, 0, server, 0, 20*sim.Millisecond, 2*sim.Millisecond, 5)
	w.Start()
	w.RunUntil(5 * sim.Second)
	if job.Requests() < 100 {
		t.Fatalf("requests = %d", job.Requests())
	}
	resp := job.MeanResponse()
	// Service 2 ms + network; idle cluster.
	if resp < 0.002 || resp > 0.006 {
		t.Errorf("response = %.6fs", resp)
	}
	if job.P95Response() < resp*0.99 || job.P99Response() < job.P95Response()-0.01*resp {
		t.Errorf("web percentiles unordered: mean=%v p95=%v p99=%v",
			resp, job.P95Response(), job.P99Response())
	}
}

func TestBSPAppValidation(t *testing.T) {
	w := smallWorld(t, 1, 1, sim.Millisecond)
	_ = w
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty VM list accepted")
			}
		}()
		NewBSPApp(NPB("lu", ClassA), nil, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid profile accepted")
			}
		}()
		NewBSPApp(AppProfile{}, nil, 1)
	}()
	defer func() {
		if recover() == nil {
			t.Error("zero rounds accepted")
		}
	}()
	NewParallelRun(nil, 0, false, nil)
}
