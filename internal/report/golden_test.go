package report

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenTable exercises every rendering feature at once: a title, uneven
// column widths, cells needing CSV escaping (commas, quotes, newline-free
// unicode), an embedded sparkline, and notes.
func goldenTable() *Table {
	tb := New("scheduler sweep (seed 7)", "approach", "mean exec", "speedup", "trend")
	tb.Add("CR", "41.203s", "1.00", Spark([]float64{41.2, 41.3, 41.1}))
	tb.Add("ATC", "17.904s", "2.30", Spark([]float64{30.1, 24.0, 17.9}))
	tb.Add(`VS "micro"`, "22.117s", "1.86", Spark([]float64{25, 23, 22.1}))
	tb.Add("HY, boosted", "19.540s", "2.11", Spark([]float64{21, 20, 19.5}))
	tb.AddNote("classes A,B averaged; quotes \"escaped\" in CSV")
	return tb
}

// TestGolden locks the exact bytes of each renderer against files under
// testdata/. Regenerate after an intentional format change with
//
//	go test ./internal/report -run TestGolden -update
func TestGolden(t *testing.T) {
	tb := goldenTable()
	cases := []struct {
		name string
		got  string
	}{
		{"table.txt", tb.String()},
		{"table.csv", tb.CSV()},
		{"table.md", tb.Markdown()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join("testdata", c.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(c.got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if c.got != string(want) {
				t.Errorf("%s drifted from golden:\n--- got ---\n%s--- want ---\n%s", c.name, c.got, want)
			}
		})
	}
}
