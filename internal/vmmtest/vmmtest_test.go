package vmmtest

import (
	"testing"

	"atcsched/internal/sim"
	"atcsched/internal/vmm"
)

// rr is a minimal FIFO scheduler so the builders can be exercised
// without depending on any real policy package.
type rr struct {
	q     []*vmm.VCPU
	slice sim.Time
}

func (s *rr) Name() string                               { return "rr" }
func (s *rr) Register(v *vmm.VCPU)                       {}
func (s *rr) Enqueue(v *vmm.VCPU, r vmm.EnqueueReason)   { s.q = append(s.q, v) }
func (s *rr) Dequeue(v *vmm.VCPU) bool                   { return false }
func (s *rr) Slice(v *vmm.VCPU) sim.Time                 { return s.slice }
func (s *rr) WakePreempts(p *vmm.PCPU, w *vmm.VCPU) bool { return false }
func (s *rr) OnTick(n *vmm.Node)                         {}
func (s *rr) OnPeriod(n *vmm.Node)                       {}
func (s *rr) PickNext(p *vmm.PCPU) *vmm.VCPU {
	for i, v := range s.q {
		if v.AllowedOn(p.Index()) {
			s.q = append(s.q[:i], s.q[i+1:]...)
			return v
		}
	}
	return nil
}

func factory() vmm.SchedulerFactory {
	return func(n *vmm.Node) vmm.Scheduler { return &rr{slice: 30 * sim.Millisecond} }
}

func TestWorldBuilderShape(t *testing.T) {
	w := World(2, 3, factory())
	if got := len(w.Nodes()); got != 2 {
		t.Fatalf("nodes = %d, want 2", got)
	}
	for _, n := range w.Nodes() {
		if got := len(n.PCPUs()); got != 3 {
			t.Errorf("node %d pcpus = %d, want 3", n.ID(), got)
		}
		if got := len(n.Dom0().VCPUs()); got != 1 {
			t.Errorf("node %d dom0 vcpus = %d, want 1", n.ID(), got)
		}
	}
	if errs := w.Audit(); len(errs) > 0 {
		t.Fatalf("fresh builder world fails audit: %v", errs)
	}
}

func TestSeqRunsOnceThenIdles(t *testing.T) {
	w := World(1, 1, factory())
	vmA := w.Node(0).NewVM("a", vmm.ClassParallel, 1, 0, 1)
	v := vmA.VCPU(0)
	Seq(v, vmm.Compute(2*sim.Millisecond), vmm.Compute(sim.Millisecond))
	w.Start()
	w.RunUntil(sim.Second)
	if got := v.Rounds(); got != 1 {
		t.Fatalf("rounds = %d, want exactly 1 (Seq is one-shot)", got)
	}
	if v.State() != vmm.StateIdle {
		t.Fatalf("state = %v after one-shot sequence", v.State())
	}
	// CPUTime includes the dispatch context-switch cost, so allow a small
	// overhead band above the 3ms of pure compute.
	if got := v.CPUTime(); got < 3*sim.Millisecond || got > 3*sim.Millisecond+100*sim.Microsecond {
		t.Errorf("cpu time = %v, want 3ms plus switch overhead", got)
	}
	w.MustAudit()
}

func TestLoopRestartsForever(t *testing.T) {
	w := World(1, 1, factory())
	vmA := w.Node(0).NewVM("a", vmm.ClassParallel, 1, 0, 1)
	v := vmA.VCPU(0)
	Loop(v, vmm.Compute(sim.Millisecond))
	w.Start()
	w.RunUntil(100 * sim.Millisecond)
	if got := v.Rounds(); got < 50 {
		t.Fatalf("rounds = %d in 100ms of 1ms loops, want many", got)
	}
	if v.State() == vmm.StateIdle {
		t.Fatal("looping VCPU went idle")
	}
	w.MustAudit()
}

func TestLoopNStopsAtNAndReportsRounds(t *testing.T) {
	w := World(1, 1, factory())
	vmA := w.Node(0).NewVM("a", vmm.ClassParallel, 1, 0, 1)
	v := vmA.VCPU(0)
	var rounds []int
	var stamps []sim.Time
	LoopN(v, 3, func(round int, now sim.Time) {
		rounds = append(rounds, round)
		stamps = append(stamps, now)
	}, w.Eng, vmm.Compute(2*sim.Millisecond))
	w.Start()
	w.RunUntil(sim.Second)
	if got := v.Rounds(); got != 3 {
		t.Fatalf("rounds = %d, want exactly 3", got)
	}
	if len(rounds) != 3 || rounds[0] != 1 || rounds[2] != 3 {
		t.Fatalf("onRound calls = %v", rounds)
	}
	// Stamps land at 2ms intervals shifted by per-dispatch overhead, so
	// check ordering and minimum spacing rather than exact instants.
	for i, at := range stamps {
		want := sim.Time(i+1) * 2 * sim.Millisecond
		if at < want || at > want+sim.Millisecond {
			t.Errorf("round %d at %v, want within 1ms above %v", i+1, at, want)
		}
	}
	if v.State() != vmm.StateIdle {
		t.Fatalf("state = %v after LoopN finished", v.State())
	}
	w.MustAudit()
}

func TestSpinPairGeneratesSpinWaits(t *testing.T) {
	// The builder's contract: sustained lock-holder preemption, i.e. the
	// parallel VM accumulates real spin-wait time under a small slice.
	w := World(1, 1, factory())
	vmA, l := SpinPair(w.Node(0), 30*sim.Millisecond)
	if l.VM() != vmA {
		t.Fatal("lock not owned by the parallel VM")
	}
	w.Start()
	w.RunUntil(2 * sim.Second)
	if got := vmA.SpinWaitTotal(); got == 0 {
		t.Fatal("SpinPair produced no spin waiting")
	}
	w.MustAudit()
}

func TestMisuseFailsLoudly(t *testing.T) {
	// Builders sit on the vmm substrate's own misuse checks: installing a
	// process on a VCPU that already has one must panic, not silently
	// replace the workload mid-run.
	w := World(1, 1, factory())
	vmA := w.Node(0).NewVM("a", vmm.ClassParallel, 1, 0, 1)
	v := vmA.VCPU(0)
	Seq(v, vmm.Compute(sim.Millisecond))
	defer func() {
		if recover() == nil {
			t.Fatal("second SetProcess on a busy VCPU did not panic")
		}
	}()
	Seq(v, vmm.Compute(sim.Millisecond))
}
