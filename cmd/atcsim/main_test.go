package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atcsched/internal/sched/registry"
)

func TestRunTinyScenario(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-nodes", "1", "-vcs", "1", "-vcpus", "1", "-rounds", "1",
		"-kernel", "ep", "-class", "A", "-sched", "CR", "-horizon", "60",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"per-cluster results", "vc0", "virtual time"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunSpecFile(t *testing.T) {
	spec := filepath.Join(t.TempDir(), "tiny.json")
	if err := os.WriteFile(spec, []byte(
		`{"nodes":1,"horizonSec":60,"virtualClusters":[{"vms":1,"vcpus":1,"kernel":"ep","class":"A","rounds":1}]}`,
	), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-f", spec}, &out); err != nil {
		t.Fatalf("run -f: %v", err)
	}
	if out.Len() == 0 {
		t.Fatal("scenario file run produced no output")
	}
}

func TestRunTraceSummary(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-nodes", "1", "-vcs", "1", "-vcpus", "1", "-rounds", "1",
		"-kernel", "ep", "-class", "A", "-sched", "ATC", "-horizon", "60",
		"-trace", "summary",
	}, &out)
	if err != nil {
		t.Fatalf("run -trace summary: %v", err)
	}
	if !strings.Contains(out.String(), "dispatches") {
		t.Errorf("no trace summary in output:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-bogus"},
		{"-class", "Z"},
		{"-sched", "NOPE"},
		{"-f", "/nonexistent/path.json"},
		{"-trace", "wat:x", "-nodes", "1", "-vcs", "1", "-vcpus", "1", "-rounds", "1", "-kernel", "ep", "-class", "A", "-horizon", "60"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// TestListSchedulers pins the registry-backed listing: every registered
// kind appears, the paper's comparison set leads in its order, and each
// entry carries serialized defaults.
func TestListSchedulers(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list-schedulers"}, &out); err != nil {
		t.Fatalf("run -list-schedulers: %v", err)
	}
	got := out.String()
	for _, kind := range registry.Kinds() {
		if !strings.Contains(got, kind+"\t") {
			t.Errorf("listing missing kind %s:\n%s", kind, got)
		}
	}
	if !strings.Contains(got, "defaults:") || !strings.Contains(got, `"timeSlice": "30ms"`) {
		t.Errorf("listing missing serialized defaults:\n%s", got)
	}
	// Paper order: CR first, ATC after the other compared kinds.
	if cr, atc := strings.Index(got, "CR\t"), strings.Index(got, "ATC\t"); !(cr >= 0 && atc > cr) {
		t.Errorf("comparison set out of order (CR at %d, ATC at %d)", cr, atc)
	}
}

// TestUnknownSchedulerFlag pins that a typo'd -sched fails with the
// registry's enumerating error rather than a bare unknown-kind message.
func TestUnknownSchedulerFlag(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-sched", "BOGUS", "-nodes", "1", "-vcs", "1", "-vcpus", "1", "-rounds", "1"}, &out)
	if err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	for _, want := range []string{`"BOGUS"`, "valid:", "CR", "ATC"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestRunTimelineArtifacts proves -timeline and -jsonl produce parseable
// artifacts on both the flag-built and spec-file paths.
func TestRunTimelineArtifacts(t *testing.T) {
	dir := t.TempDir()
	tl := filepath.Join(dir, "tl.json")
	jl := filepath.Join(dir, "series.jsonl")
	var out strings.Builder
	err := run([]string{
		"-nodes", "2", "-vcs", "2", "-vcpus", "2", "-rounds", "1",
		"-kernel", "ep", "-class", "A", "-sched", "ATC", "-horizon", "120",
		"-timeline", tl, "-jsonl", jl,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	assertTimeline(t, tl)
	assertJSONL(t, jl)

	spec := filepath.Join(dir, "tiny.json")
	if err := os.WriteFile(spec, []byte(
		`{"nodes":1,"horizonSec":60,"virtualClusters":[{"vms":1,"vcpus":2,"kernel":"ep","class":"A","rounds":1}]}`,
	), 0o644); err != nil {
		t.Fatal(err)
	}
	tl2 := filepath.Join(dir, "tl2.json")
	jl2 := filepath.Join(dir, "series2.jsonl")
	out.Reset()
	if err := run([]string{"-f", spec, "-timeline", tl2, "-jsonl", jl2}, &out); err != nil {
		t.Fatalf("run -f: %v", err)
	}
	assertTimeline(t, tl2)
	assertJSONL(t, jl2)
}

// assertTimeline checks the file parses as trace-event JSON with events.
func assertTimeline(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("%s is not trace-event JSON: %v", path, err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatalf("%s has no events", path)
	}
}

// assertJSONL checks every line parses and the header is a meta line.
func assertJSONL(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("%s has only %d lines", path, len(lines))
	}
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("%s line %d is not JSON: %v", path, i, err)
		}
		if i == 0 && m["type"] != "meta" {
			t.Fatalf("%s does not start with a meta line: %s", path, ln)
		}
	}
}
