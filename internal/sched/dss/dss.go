// Package dss implements DSS, dynamic switching-frequency scaling ([5]
// in the paper): each VM's time slice is set independently from its I/O
// behaviour — VMs that wake frequently for I/O get short slices (high
// switching frequency), CPU-bound VMs keep the default. The paper's
// critique emerges naturally: because slices are per-VM rather than
// node-uniform, a co-resident VM with a long slice still stretches the
// spin latency of the parallel VMs.
package dss

import (
	"atcsched/internal/sched/credit"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
)

// Tier maps an I/O event rate to a slice.
type Tier struct {
	// MinRate is the smoothed per-period I/O event rate at which this
	// tier applies. Fractional thresholds matter: a starved VM on a
	// saturated node may see less than one event per period, and that
	// trickle is exactly the signal DSS needs to shorten its slice.
	MinRate float64 `json:"minRate,omitzero"`
	// Slice is the time slice granted.
	Slice sim.Time `json:"slice,omitzero"`
}

// Options configures the DSS scheduler.
type Options struct {
	// Credit configures the underlying credit core; Credit.TimeSlice is
	// the slice for VMs below every tier.
	Credit credit.Options `json:"credit,omitzero"`
	// Tiers must be sorted by descending MinRate; the first tier whose
	// MinRate the VM's smoothed per-period I/O event rate reaches wins.
	Tiers []Tier `json:"tiers,omitempty"`
	// Smoothing is the exponential moving average weight on the new
	// period's wake count, in (0, 1].
	Smoothing float64 `json:"smoothing,omitzero"`
}

// DefaultOptions returns the DSS configuration used in the evaluation.
func DefaultOptions() Options {
	return Options{
		Credit: credit.DefaultOptions(),
		Tiers: []Tier{
			{MinRate: 100, Slice: sim.Millisecond},
			{MinRate: 10, Slice: 5 * sim.Millisecond},
			{MinRate: 0.4, Slice: 10 * sim.Millisecond},
		},
		Smoothing: 0.5,
	}
}

// Scheduler is DSS layered over the credit core.
type Scheduler struct {
	*credit.Scheduler
	opts Options
	// rate is the smoothed per-period I/O wake count per VM id.
	rate map[int]float64
	// slices is the slice currently in force per VM id.
	slices map[int]sim.Time
}

// New builds a DSS scheduler for node n.
func New(n *vmm.Node, opts Options) *Scheduler {
	if opts.Smoothing <= 0 || opts.Smoothing > 1 {
		panic("dss: Smoothing must be in (0,1]")
	}
	for i := 1; i < len(opts.Tiers); i++ {
		if opts.Tiers[i].MinRate >= opts.Tiers[i-1].MinRate {
			panic("dss: tiers must be sorted by descending MinRate")
		}
	}
	return &Scheduler{
		Scheduler: credit.New(n, opts.Credit),
		opts:      opts,
		rate:      make(map[int]float64),
		slices:    make(map[int]sim.Time),
	}
}

// Factory returns a vmm.SchedulerFactory producing DSS schedulers.
func Factory(opts Options) vmm.SchedulerFactory {
	return func(n *vmm.Node) vmm.Scheduler { return New(n, opts) }
}

// Name implements vmm.Scheduler.
func (s *Scheduler) Name() string { return "DSS" }

// Slice implements vmm.Scheduler.
func (s *Scheduler) Slice(v *vmm.VCPU) sim.Time {
	if sl, ok := s.slices[v.VM().ID()]; ok {
		return sl
	}
	return s.Options().TimeSlice
}

// CurrentSlice returns the slice in force for vm.
func (s *Scheduler) CurrentSlice(vm *vmm.VM) sim.Time {
	if sl, ok := s.slices[vm.ID()]; ok {
		return sl
	}
	return s.Options().TimeSlice
}

// OnPeriod implements vmm.Scheduler: refill credits, then re-tier each
// guest VM from its smoothed I/O event rate.
func (s *Scheduler) OnPeriod(n *vmm.Node) {
	s.Scheduler.OnPeriod(n)
	for _, vm := range n.VMs() {
		wakes := float64(vm.SamplePeriodIOEvents())
		prev := s.rate[vm.ID()]
		r := s.opts.Smoothing*wakes + (1-s.opts.Smoothing)*prev
		s.rate[vm.ID()] = r
		slice := s.Options().TimeSlice
		for _, t := range s.opts.Tiers {
			if r >= t.MinRate {
				slice = t.Slice
				break
			}
		}
		s.slices[vm.ID()] = slice
	}
}
