// Package vslicer implements VS, the vSlicer baseline ([15] in the
// paper): differentiated-frequency CPU microslicing. VMs marked
// latency-sensitive are scheduled at a much finer slice (the same CPU
// share delivered in more, shorter turns), which shortens their
// scheduling delay; latency-insensitive VMs — including the parallel
// ones, which vSlicer does not recognize — keep the default slice. That
// blind spot is why the paper finds VS inferior to DSS and ATC for
// parallel workloads.
package vslicer

import (
	"atcsched/internal/sched/credit"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
)

// Options configures the VS scheduler.
type Options struct {
	// Credit configures the underlying credit core; Credit.TimeSlice is
	// the slice for latency-insensitive VMs.
	Credit credit.Options `json:"credit,omitzero"`
	// MicroSlice is the slice granted to latency-sensitive VMs.
	MicroSlice sim.Time `json:"microSlice,omitzero"`
}

// DefaultOptions returns the VS configuration used in the evaluation:
// 1 ms microslices (30 ms / 30, vSlicer's differentiated frequency).
func DefaultOptions() Options {
	return Options{
		Credit:     credit.DefaultOptions(),
		MicroSlice: sim.Millisecond,
	}
}

// Scheduler is VS layered over the credit core.
type Scheduler struct {
	*credit.Scheduler
	opts Options
}

// New builds a VS scheduler for node n.
func New(n *vmm.Node, opts Options) *Scheduler {
	if opts.MicroSlice <= 0 || opts.MicroSlice >= opts.Credit.TimeSlice {
		panic("vslicer: MicroSlice must be positive and below the default slice")
	}
	return &Scheduler{Scheduler: credit.New(n, opts.Credit), opts: opts}
}

// Factory returns a vmm.SchedulerFactory producing VS schedulers.
func Factory(opts Options) vmm.SchedulerFactory {
	return func(n *vmm.Node) vmm.Scheduler { return New(n, opts) }
}

// Name implements vmm.Scheduler.
func (s *Scheduler) Name() string { return "VS" }

// Slice implements vmm.Scheduler.
func (s *Scheduler) Slice(v *vmm.VCPU) sim.Time {
	if v.VM().LatencySensitive {
		return s.opts.MicroSlice
	}
	return s.Options().TimeSlice
}
