package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

// refEvent mirrors one scheduled callback in the reference model.
type refEvent struct {
	at       Time
	seq      int
	canceled bool
}

// TestEngineMatchesReferenceModel drives the engine with a random script
// of schedule/cancel operations and compares the firing order against a
// naive sort-based model — the event pool and heap must be perfectly
// invisible.
func TestEngineMatchesReferenceModel(t *testing.T) {
	type op struct {
		Delay  uint16
		Cancel uint8 // cancel the (Cancel % scheduled)-th event before adding
	}
	f := func(ops []op) bool {
		e := New()
		var model []refEvent
		var handles []Handle
		var fired []int

		for i, o := range ops {
			if len(handles) > 0 && o.Cancel%3 == 0 {
				idx := int(o.Cancel) % len(handles)
				e.Cancel(handles[idx])
				model[idx].canceled = true
			}
			seq := i
			ev := e.Schedule(Time(o.Delay), func() { fired = append(fired, seq) })
			handles = append(handles, ev)
			model = append(model, refEvent{at: e.Now() + Time(o.Delay), seq: seq})
		}
		e.Run()

		// Reference: uncanceled events sorted by (at, seq). Because all
		// scheduling happened before any firing (Now()==0 during setup),
		// the order is exactly this sort.
		var want []int
		idxs := make([]int, 0, len(model))
		for i, m := range model {
			if !m.canceled {
				idxs = append(idxs, i)
			}
		}
		sort.SliceStable(idxs, func(a, b int) bool {
			if model[idxs[a]].at != model[idxs[b]].at {
				return model[idxs[a]].at < model[idxs[b]].at
			}
			return model[idxs[a]].seq < model[idxs[b]].seq
		})
		for _, i := range idxs {
			want = append(want, model[i].seq)
		}
		if len(fired) != len(want) {
			return false
		}
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestEventPoolReuseIsInvisible hammers schedule/fire/cancel cycles and
// verifies late cancels of fired events never affect recycled ones.
func TestEventPoolReuseIsInvisible(t *testing.T) {
	e := New()
	var stale []Handle
	fired := 0
	for round := 0; round < 50; round++ {
		ev := e.Schedule(Time(round), func() { fired++ })
		stale = append(stale, ev)
		e.Run()
		// Cancel all stale (already fired) handles: must be no-ops even
		// though their objects may have been recycled... they were not
		// rescheduled yet, so this is the documented-legal window.
		for _, s := range stale {
			e.Cancel(s)
		}
	}
	if fired != 50 {
		t.Fatalf("fired = %d, want 50", fired)
	}
	// After all that cancel noise, fresh events must still fire.
	ok := false
	e.Schedule(1, func() { ok = true })
	e.Run()
	if !ok {
		t.Fatal("fresh event killed by stale cancel")
	}
}
