package proptest

import (
	"bytes"
	"fmt"

	"atcsched/internal/core"
	"atcsched/internal/daemon"
	"atcsched/internal/fault"
)

// Fleet kill-restore property geometry: 40 hollow control periods (30ms
// each) with a daemon-crash blackout over roughly periods 16-25 and the
// kill landing mid-blackout at period 20 — the worst moment to die.
const (
	fleetKRPeriods = 40
	fleetKRKillAt  = 20
)

// fleetBackend builds the property's hollow world: FleetNodes kubemark
// nodes plus the blackout window.
func fleetBackend(spec Spec) (*daemon.SimBackend, error) {
	return daemon.NewSimBackend(daemon.SimBackendConfig{
		Nodes:      spec.FleetNodes,
		Hollow:     true,
		MaxPeriods: fleetKRPeriods,
		Seed:       spec.Seed,
		Faults: &fault.Spec{Windows: []fault.Window{
			{Kind: fault.DaemonCrash, StartSec: 0.45, DurSec: 0.3},
		}},
	})
}

// stepFleet drives f for n control periods (early clean end is fine).
func stepFleet(f *daemon.Fleet, n int) error {
	for i := 0; i < n; i++ {
		if err := f.Step(); err != nil {
			if daemon.IsDone(err) {
				return nil
			}
			return fmt.Errorf("period %d: %w", i, err)
		}
	}
	return nil
}

// checkFleetKillRestore proves the fleet control plane's resilience
// property on spec's hollow side-world: a fleet daemon killed in the
// middle of a daemon-crash blackout and restored from its snapshot must
// converge to control state byte-identical to an uninterrupted run's.
// The shard count is seed-derived so the sweep spreads coverage over
// 1..4 shards.
func checkFleetKillRestore(spec Spec) error {
	shards := 1 + int(spec.Seed%4)
	opts := daemon.FleetOptions{Shards: shards, MaxNodes: spec.FleetNodes}
	cfg := core.DefaultConfig()

	// Uninterrupted reference run.
	refB, err := fleetBackend(spec)
	if err != nil {
		return fmt.Errorf("fleet: build: %w", err)
	}
	ref := daemon.NewFleet(cfg, refB, refB, opts)
	if err := stepFleet(ref, fleetKRPeriods); err != nil {
		ref.Close()
		return fmt.Errorf("fleet: reference: %w", err)
	}
	refSnap, err := ref.Snapshot().Encode()
	ref.Close()
	if err != nil {
		return fmt.Errorf("fleet: reference snapshot: %w", err)
	}

	// Killed-and-restored run on an identical world.
	b, err := fleetBackend(spec)
	if err != nil {
		return fmt.Errorf("fleet: build: %w", err)
	}
	f1 := daemon.NewFleet(cfg, b, b, opts)
	if err := stepFleet(f1, fleetKRKillAt); err != nil {
		f1.Close()
		return fmt.Errorf("fleet: pre-kill: %w", err)
	}
	enc, err := f1.Snapshot().Encode()
	f1.Close() // the crash
	if err != nil {
		return fmt.Errorf("fleet: kill snapshot: %w", err)
	}
	snap, err := daemon.DecodeSnapshot(enc)
	if err != nil {
		return fmt.Errorf("fleet: decode: %w", err)
	}
	f2 := daemon.NewFleet(cfg, b, b, opts)
	defer f2.Close()
	if err := f2.Restore(snap); err != nil {
		return fmt.Errorf("fleet: restore: %w", err)
	}
	if got := int(f2.RestoredNodes()); got != len(snap.Nodes) {
		return fmt.Errorf("fleet: restored %d of %d snapshot nodes", got, len(snap.Nodes))
	}
	if err := stepFleet(f2, fleetKRPeriods-fleetKRKillAt); err != nil {
		return fmt.Errorf("fleet: post-restore: %w", err)
	}
	gotSnap, err := f2.Snapshot().Encode()
	if err != nil {
		return fmt.Errorf("fleet: final snapshot: %w", err)
	}
	if !bytes.Equal(gotSnap, refSnap) {
		return fmt.Errorf("fleet: kill-restore control state diverges from uninterrupted run "+
			"(nodes=%d shards=%d, first diff at byte %d of %d/%d)",
			spec.FleetNodes, shards, diffAt(string(gotSnap), string(refSnap)), len(gotSnap), len(refSnap))
	}
	if b.FaultReport().DaemonDarkPeriods == 0 {
		return fmt.Errorf("fleet: blackout window never engaged")
	}
	return nil
}
