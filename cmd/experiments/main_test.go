package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	got := out.String()
	for _, want := range []string{"fig10", "tab1"} {
		if !strings.Contains(got, want) {
			t.Errorf("-list output missing %q:\n%s", want, got)
		}
	}
}

func TestRunSingleExperimentSmallScale(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "fig1", "-scale", "small", "-parallel", "1"}, &out); err != nil {
		t.Fatalf("run fig1: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "== fig1:") || !strings.Contains(got, "done in") {
		t.Errorf("fig1 output missing framing:\n%s", got)
	}
	// A non-empty table body: at least one line beyond headers/framing.
	if len(strings.Split(got, "\n")) < 6 {
		t.Errorf("suspiciously short output:\n%s", got)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-bogus"},
		{},                                     // neither -exp nor -all
		{"-exp", "nosuch"},                     // unknown experiment id
		{"-exp", "fig1", "-scale", "galactic"}, // unknown scale
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}
