package extslice

import (
	"atcsched/internal/sched/credit"
	"atcsched/internal/sched/registry"
	"atcsched/internal/vmm"
)

// EXT is registered with neither a comparison position nor the extension
// flag: it is resolvable by name (the control daemon's sim backend swaps
// nodes onto it) but excluded from the evaluation sweeps, which compare
// scheduling policies rather than actuation paths.
func init() {
	registry.Register(registry.Descriptor{
		Kind:        "EXT",
		Description: "externally-controlled credit scheduler: per-VM slices set by a userspace daemon (cmd/atcd)",
		Defaults:    func() any { o := credit.DefaultOptions(); return &o },
		Build: func(opts any, base registry.Base) (vmm.SchedulerFactory, error) {
			o := *opts.(*credit.Options)
			if err := o.ApplyOverrides(base.FixedSlice, base.DisableBoost, base.DisableSteal); err != nil {
				return nil, err
			}
			return Factory(o), nil
		},
	})
}
